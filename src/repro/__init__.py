"""repro — reproduction of "A Novel Covert Channel Attack Using Memory
Encryption Engine Cache" (Han & Kim, DAC 2019).

The package builds the whole system in simulation: an SGX-capable
multi-core machine with a Memory Encryption Engine and its cache
(:mod:`repro.mee`, :mod:`repro.system`), and the paper's attack on top of
it (:mod:`repro.core`): MEE-cache reverse engineering (Figure 4 /
Algorithm 1) and the role-reversed covert channel (Algorithm 2).

Quickstart::

    from repro import Machine, skylake_i7_6700k, CovertChannel, text_to_bits

    machine = Machine(skylake_i7_6700k(seed=7))
    channel = CovertChannel(machine)
    channel.setup()
    result = channel.transmit(text_to_bits("hi"))
    print(result.metrics.error_rate, result.metrics.bit_rate, "KBps")
"""

from .config import (
    CacheGeometry,
    DRAMConfig,
    HierarchyConfig,
    MEECacheConfig,
    MEELatencyConfig,
    NoiseConfig,
    PagingConfig,
    SystemConfig,
    TimerConfig,
    skylake_i7_6700k,
)
from .coding import (
    DEFAULT_LADDER,
    PROFILES,
    ChannelQualityEstimator,
    CodingProfile,
    CodingStack,
    ReedSolomon,
    StackDecode,
    profile_by_name,
)
from .core import (
    AdaptiveCodeRateConfig,
    AdaptiveCodeRateController,
    AdaptiveWindowConfig,
    AdaptiveWindowController,
    CandidateAddressSet,
    ChannelConfig,
    ChannelMetrics,
    ChannelResult,
    CovertChannel,
    EvictionSetResult,
    LatencyCalibration,
    PrimeProbeResult,
    RobustnessMetrics,
    SelfHealingChannel,
    SelfHealingConfig,
    SelfHealingResult,
    ThresholdClassifier,
    allocate_candidate_pages,
    alternating_bits,
    bit_error_rate,
    bit_rate_kbps,
    bits_to_bytes,
    bits_to_text,
    bytes_to_bits,
    calibrate_classifier,
    capacity_experiment,
    find_eviction_set,
    find_monitor_address,
    pattern_100100,
    run_prime_probe_channel,
    text_to_bits,
)
from .errors import (
    AddressError,
    ChannelError,
    CodingError,
    ConfigurationError,
    EnclaveError,
    EPCError,
    FaultError,
    InstructionNotAvailableError,
    IntegrityError,
    InvariantViolation,
    OracleDivergence,
    PagingError,
    ProcessError,
    ReproError,
    SimulationError,
    SnapshotError,
    TrialError,
    TrialTimeoutError,
)
from .faults import FaultEvent, FaultInjector, FaultPlan
from .sanitizer import MachineSnapshot, Sanitizer, SanitizerConfig
from .system import Machine

__version__ = "1.0.0"

__all__ = [
    "AdaptiveCodeRateConfig",
    "AdaptiveCodeRateController",
    "AdaptiveWindowConfig",
    "AdaptiveWindowController",
    "AddressError",
    "CacheGeometry",
    "CandidateAddressSet",
    "ChannelConfig",
    "ChannelError",
    "ChannelMetrics",
    "ChannelQualityEstimator",
    "ChannelResult",
    "CodingError",
    "CodingProfile",
    "CodingStack",
    "ConfigurationError",
    "CovertChannel",
    "DEFAULT_LADDER",
    "DRAMConfig",
    "EPCError",
    "EnclaveError",
    "EvictionSetResult",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "HierarchyConfig",
    "InstructionNotAvailableError",
    "IntegrityError",
    "InvariantViolation",
    "LatencyCalibration",
    "MEECacheConfig",
    "MEELatencyConfig",
    "Machine",
    "MachineSnapshot",
    "NoiseConfig",
    "OracleDivergence",
    "PROFILES",
    "PagingConfig",
    "PagingError",
    "PrimeProbeResult",
    "ProcessError",
    "ReedSolomon",
    "ReproError",
    "Sanitizer",
    "SanitizerConfig",
    "SimulationError",
    "SnapshotError",
    "RobustnessMetrics",
    "SelfHealingChannel",
    "SelfHealingConfig",
    "SelfHealingResult",
    "StackDecode",
    "SystemConfig",
    "ThresholdClassifier",
    "TimerConfig",
    "TrialError",
    "TrialTimeoutError",
    "allocate_candidate_pages",
    "alternating_bits",
    "bit_error_rate",
    "bit_rate_kbps",
    "bits_to_bytes",
    "bits_to_text",
    "bytes_to_bits",
    "calibrate_classifier",
    "capacity_experiment",
    "find_eviction_set",
    "find_monitor_address",
    "pattern_100100",
    "profile_by_name",
    "run_prime_probe_channel",
    "skylake_i7_6700k",
    "text_to_bits",
    "__version__",
]
