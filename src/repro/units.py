"""Size and hardware-unit constants shared across the library.

The paper's machine model (Intel i7-6700K, Skylake) uses 64 B cache lines,
4 KB pages and a 128 MB MEE region; those constants — and the MEE-specific
512 B "chunk" covered by one versions node — live here so every subsystem
agrees on the arithmetic.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Cache line size used by both the CPU hierarchy and the MEE cache (bytes).
CACHE_LINE = 64

#: Small page size; the only page size available inside an enclave (bytes).
PAGE_SIZE = 4 * KIB

#: Hugepage size available to non-enclave code only (bytes).
HUGEPAGE_SIZE = 2 * MIB

#: Protected-region chunk covered by a single 64 B versions node (bytes).
CHUNK_SIZE = 512

#: Number of 512 B chunks per 4 KB page.
CHUNKS_PER_PAGE = PAGE_SIZE // CHUNK_SIZE  # 8

#: Counters held by one 64 B versions node (one per 64 B data line).
COUNTERS_PER_VERSIONS_NODE = CHUNK_SIZE // CACHE_LINE  # 8


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment``."""
    return value - (value % alignment)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment``."""
    return align_down(value + alignment - 1, alignment)


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0
