"""Noise environments for robustness evaluation (paper Figure 8).

Three stressors:

* :func:`llc_memory_stressor` — the ``stress-ng``-style load of Figure 8(b):
  hammers general (non-protected) memory through the cache hierarchy.  It
  never touches the MEE cache, so the paper finds it barely hurts the
  channel; in the model it raises DRAM contention and LLC pressure only.
* :func:`mee_stride_stressor` — Figure 8(c)/(d): another core reads the
  protected region at a 512 B or 4 KB stride, constantly pulling new
  integrity-tree lines into the MEE cache and occasionally evicting the
  channel's versions line.
* :func:`ambient_system_noise` — light sporadic protected activity (SGX
  runtime, other tenants) present in every run; one source of the paper's
  residual ~1.7% error floor.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..mem.paging import MappedRegion
from ..sim.ops import Access, Busy, Flush, Operation, OpResult
from ..units import CACHE_LINE, PAGE_SIZE

__all__ = ["llc_memory_stressor", "mee_stride_stressor", "ambient_system_noise"]


def llc_memory_stressor(
    dram,
    region: MappedRegion,
    duration_cycles: float,
    line_stride: int = 4 * CACHE_LINE,
) -> Generator[Operation, OpResult, int]:
    """Stream over a large non-protected buffer until ``duration_cycles``.

    Registers itself as a DRAM bus stressor for its lifetime, raising mean
    DRAM latency for everyone (including, mildly, the channel) — the
    mechanism behind Figure 8(b)'s "minimal impact".

    Returns:
        Number of accesses performed.
    """
    dram.register_stressor()
    elapsed = 0.0
    accesses = 0
    position = 0
    try:
        while elapsed < duration_cycles:
            vaddr = region.base + position
            result = yield Access(vaddr)
            elapsed += result.latency
            accesses += 1
            position = (position + line_stride) % region.size
    finally:
        dram.unregister_stressor()
    return accesses


def mee_stride_stressor(
    region: MappedRegion,
    stride: int,
    duration_cycles: float,
) -> Generator[Operation, OpResult, int]:
    """Read the protected ``region`` at ``stride`` until ``duration_cycles``.

    Must be spawned with the enclave owning ``region``.  A 512 B stride
    touches a fresh versions node every access; a 4 KB stride additionally
    misses L0 every access — the paper's two MEE-noise shapes (Figure 8c/d).

    Returns:
        Number of accesses performed.
    """
    elapsed = 0.0
    accesses = 0
    position = 0
    while elapsed < duration_cycles:
        vaddr = region.base + position
        result = yield Access(vaddr)
        elapsed += result.latency
        yield Flush(vaddr)
        elapsed += 40  # clflush cost; exact value only paces the loop
        accesses += 1
        position = (position + stride) % region.size
    return accesses


def ambient_system_noise(
    region: MappedRegion,
    duration_cycles: float,
    rng: np.random.Generator,
    mean_gap_cycles: float = 220_000.0,
    burst_pages: int = 24,
) -> Generator[Operation, OpResult, int]:
    """Sporadic bursts of protected-page activity (always-on background).

    Every ~``mean_gap_cycles`` (exponential), touch ``burst_pages`` random
    protected pages — the SGX runtime, paging, or an unrelated tenant.
    Each touch loads integrity-tree lines that occasionally land in (and
    with enough pressure, evict from) the channel's MEE cache set.

    Returns:
        Number of bursts emitted.
    """
    elapsed = 0.0
    bursts = 0
    pages = max(region.size // PAGE_SIZE, 1)
    while elapsed < duration_cycles:
        gap = float(rng.exponential(mean_gap_cycles))
        yield Busy(int(max(gap, 1000.0)))
        elapsed += gap
        for _ in range(burst_pages):
            page = int(rng.integers(0, pages))
            unit = int(rng.integers(0, PAGE_SIZE // 512))
            vaddr = region.base + page * PAGE_SIZE + unit * 512
            result = yield Access(vaddr)
            elapsed += result.latency
            yield Flush(vaddr)
            elapsed += 40
        bursts += 1
    return bursts
