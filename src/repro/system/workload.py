"""Stride workload generators (paper Figure 5 and the noise studies).

The paper characterizes MEE behaviour by reading the protected region at
64 B, 512 B, 4 KB, 32 KB and 256 KB strides: small strides stay within one
versions node's coverage (versions hits), larger strides step over L0/L1/L2
coverage and climb the tree.  These helpers build the access pattern and a
ready-to-spawn process body that measures each access.
"""

from __future__ import annotations

from typing import Generator, List

from ..mem.paging import MappedRegion
from ..sim.ops import Access, Flush, Operation, OpResult

__all__ = ["stride_access_pattern", "stride_reader"]


def stride_access_pattern(region: MappedRegion, stride: int, count: int) -> List[int]:
    """``count`` virtual addresses stepping ``stride`` bytes, wrapping in
    ``region``.

    Wrapping restarts at a 64 B offset shift each lap so reuse of the exact
    same lines across laps is avoided for small regions.
    """
    if stride <= 0:
        raise ValueError("stride must be positive")
    addresses = []
    lap = 0
    position = 0
    for _ in range(count):
        if position >= region.size:
            lap += 1
            position = (lap * 64) % stride if stride > 64 else 0
        addresses.append(region.base + position)
        position += stride
    return addresses


def stride_reader(
    region: MappedRegion,
    stride: int,
    count: int,
    flush: bool = True,
    latencies_out: List[float] = None,
) -> Generator[Operation, OpResult, List[float]]:
    """Process body: read ``count`` addresses at ``stride``, recording latency.

    Args:
        region: region to sweep (protected for MEE experiments).
        stride: byte stride between consecutive accesses.
        count: number of accesses.
        flush: ``clflush`` each line after the access so the *next* lap goes
            to memory again (paper Section 3, challenge 1).
        latencies_out: optional list to append latencies to in-place (handy
            when the caller cannot easily read the process result).

    Returns:
        The per-access latencies, in cycles.
    """
    latencies: List[float] = latencies_out if latencies_out is not None else []
    for vaddr in stride_access_pattern(region, stride, count):
        result = yield Access(vaddr)
        latencies.append(result.latency)
        if flush:
            yield Flush(vaddr)
    return latencies
