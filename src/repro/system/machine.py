"""The simulated machine: operation pricing, enclaves, process management.

``Machine`` implements the :class:`~repro.sim.scheduler.OperationExecutor`
protocol.  The memory path mirrors Figure 1 of the paper::

    core -> L1/L2 -> LLC -> memory controller -> [MEE if protected] -> DRAM

Protected accesses that miss the on-chip hierarchy pay uncore + DRAM for
the data line, plus whatever the MEE's integrity-tree walk adds
(:class:`~repro.mee.engine.MemoryEncryptionEngine`).  ``clflush`` empties
the hierarchy but never the MEE cache — the asymmetry the attack exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from ..config import SystemConfig
from ..errors import EnclaveError, InstructionNotAvailableError, SimulationError
from ..mem.address import PhysicalLayout
from ..mem.dram import DRAMModel
from ..mem.hierarchy import AccessLevel, CacheHierarchy
from ..mem.paging import AddressSpace, FrameAllocator
from ..mee.engine import MEEAccessResult, MemoryEncryptionEngine
from ..mee.layout import MEELayout
from ..sgx.enclave import Enclave
from ..sgx.epc import EnclavePageCache
from ..sgx.ocall import OCallModel
from ..sim.clock import CoreClock, InterruptModel
from ..sim.ops import (
    Access,
    Busy,
    Fence,
    Flush,
    Label,
    Operation,
    OpResult,
    Rdtsc,
    ReadTimer,
    WriteOp,
)
from ..sim.process import SimProcess
from ..sim.rng import RandomStreams
from ..sim.scheduler import Scheduler
from ..sim.trace import TraceRecorder
from ..units import PAGE_SIZE

__all__ = ["AccessOutcome", "Machine"]


@dataclass(frozen=True, slots=True)
class AccessOutcome:
    """Ground-truth description of where an access was satisfied.

    Only constructed while the machine's trace recorder is enabled — the
    disabled-tracing hot path allocates no outcome at all.  Exposed as the
    ``value`` of an :class:`~repro.sim.ops.Access` result for tracing and
    tests; attack code must not rely on it (on hardware only the latency is
    observable).
    """

    level: AccessLevel
    paddr: int
    mee: Optional[MEEAccessResult] = None

    @property
    def mee_hit_level(self) -> Optional[int]:
        """Integrity-tree hit level, or None for non-protected accesses."""
        return self.mee.hit_level if self.mee is not None else None


class Machine:
    """A complete simulated multi-core SGX machine."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.streams = RandomStreams(config.seed)

        paging = config.paging
        self.physical = PhysicalLayout(
            general_bytes=paging.general_frames * PAGE_SIZE,
            protected_bytes=config.mee_region_bytes,
        )
        self.dram = DRAMModel(config.dram, self.streams.stream("dram"))
        self.hierarchy = CacheHierarchy(
            config.hierarchy, config.cores, rng=self.streams.stream("hierarchy")
        )
        self.layout = MEELayout(self.physical)
        self.mee = MemoryEncryptionEngine(
            self.layout,
            config.mee_cache,
            config.mee_latency,
            self.dram,
            self.streams.stream("mee"),
        )
        self.epc = EnclavePageCache(config.mee_region_bytes)
        self.ocall = OCallModel(config.timers, self.streams.stream("ocall"))
        self.trace = TraceRecorder(enabled=False)
        self.pager = None
        if config.paging.epc_resident_limit_pages is not None:
            from ..sgx.epc_paging import EPCPager

            self.pager = EPCPager(config.paging.epc_resident_limit_pages)

        frame_rng = self.streams.stream("frames")
        self._general_frames = FrameAllocator(
            0, paging.general_frames, randomize=paging.randomize_frames, rng=frame_rng
        )
        self._protected_frames = FrameAllocator(
            self.physical.protected_base,
            config.mee_region_bytes // PAGE_SIZE,
            randomize=paging.randomize_frames,
            rng=frame_rng,
            cluster_mean_run=paging.epc_cluster_mean_run,
        )

        skew_rng = self.streams.stream("skew")
        skews = skew_rng.normal(0.0, config.clock_skew_ppm * 1e-6, config.cores)
        interrupts = InterruptModel(
            rate_per_cycle=config.interrupt_rate_per_cycle,
            duration_cycles=config.interrupt_duration_cycles,
        )
        self.clocks = [
            CoreClock(
                core,
                skew=float(skews[core]),
                interrupts=interrupts,
                rng=self.streams.stream(f"interrupts-core{core}"),
            )
            for core in range(config.cores)
        ]
        self.scheduler = Scheduler(self)
        self._spaces: Dict[str, AddressSpace] = {}
        self._enclaves: Dict[str, Enclave] = {}
        self._timer_rng = self.streams.stream("timer")

        # Hot-path constants, hoisted so _execute_access does no config
        # attribute chasing per simulated load.
        hierarchy = config.hierarchy
        self._hit_latency = {
            AccessLevel.L1: float(hierarchy.l1.hit_cycles),
            AccessLevel.L2: float(hierarchy.l2.hit_cycles),
            AccessLevel.LLC: float(hierarchy.llc.hit_cycles),
        }
        self._uncore_cycles = float(config.mee_latency.uncore_cycles)
        self._mfence_cycles = float(config.hierarchy.mfence_cycles)

        # Type-keyed operation dispatch: one dict lookup per op instead of
        # walking an isinstance chain (operation classes are final).
        self._op_handlers = {
            Access: self._execute_access,
            WriteOp: self._execute_access,
            Flush: self._execute_flush,
            Fence: self._execute_fence,
            Busy: self._execute_busy,
            Rdtsc: self._execute_rdtsc,
            ReadTimer: self._execute_read_timer,
            Label: self._execute_label,
        }

        #: installed invariant engine, or None (the default — zero overhead)
        self.sanitizer = None
        from ..sanitizer.invariants import SanitizerConfig

        env_config = SanitizerConfig.from_environment()
        if env_config is not None:
            self.install_sanitizer(env_config)

    # -- OS-level services ----------------------------------------------------

    def new_address_space(self, name: str) -> AddressSpace:
        """Create a process address space drawing from the shared frame pools."""
        if name in self._spaces:
            raise SimulationError(f"address space {name!r} already exists")
        space = AddressSpace(self._general_frames, self._protected_frames, name=name)
        self._spaces[name] = space
        return space

    def create_enclave(self, name: str, host_space: AddressSpace) -> Enclave:
        """Create an enclave inside ``host_space``."""
        if name in self._enclaves:
            raise SimulationError(f"enclave {name!r} already exists")
        enclave = Enclave(name, host_space, self.epc)
        self._enclaves[name] = enclave
        return enclave

    def spawn(
        self,
        name: str,
        body: Generator,
        core: int,
        space: AddressSpace,
        enclave: Optional[Enclave] = None,
    ) -> SimProcess:
        """Create a process pinned to ``core`` and register it for scheduling."""
        if not 0 <= core < self.config.cores:
            raise SimulationError(f"core {core} out of range")
        # A thread spawned now starts at the global present: idle cores'
        # clocks do not lag wall-clock time on real hardware, so fast-forward
        # the core to the furthest-advanced clock before pinning the process.
        clock = self.clocks[core]
        clock.now = max(clock.now, self.now)
        process = SimProcess(name, body, clock, enclave=enclave)
        process.address_space = space
        self.scheduler.add(process)
        return process

    def inject_faults(self, plan, strict: bool = False):
        """Schedule a :class:`~repro.faults.plan.FaultPlan` for execution.

        Spawns the fault injector as a scheduler process on its own virtual
        clock (outside the core set, so injector waits never advance
        ``machine.now``).  Multiple plans may be active at once.

        Args:
            plan: the fault plan to apply.
            strict: when True, a fault that has nothing to act on (e.g. a
                migrate whose source core holds only finished or cancelled
                processes) raises :class:`~repro.errors.FaultError` instead
                of being collected in the injector's ``errors`` list.

        Returns:
            The :class:`~repro.faults.injector.FaultInjector`, whose log,
            counters, and ``errors`` describe what was applied (and what
            could not be) after the run.
        """
        from ..faults.injector import FaultInjector

        injector = FaultInjector(self, plan, strict=strict)
        clock = CoreClock(
            core_id=self.config.cores,  # virtual id, outside the core range
            skew=0.0,
            interrupts=InterruptModel(rate_per_cycle=0.0),
        )
        clock.now = self.now
        process = SimProcess("fault-injector", injector.body(start_cycle=clock.now), clock)
        self.scheduler.add(process)
        return injector

    def run(self, until: Optional[float] = None) -> None:
        """Run the scheduler (see :meth:`Scheduler.run`)."""
        self.scheduler.run(until=until)

    # -- sanitizer: invariants, fingerprint, snapshot --------------------------

    def install_sanitizer(self, config=None):
        """Attach the runtime invariant engine (see :mod:`repro.sanitizer`).

        With an event cadence configured, the executor entry point is
        wrapped so checks fire every N operations; phase-boundary checks
        hook the Label handler.  The uninstrumented machine pays nothing.

        Returns:
            The installed :class:`~repro.sanitizer.invariants.Sanitizer`.

        Raises:
            SimulationError: when a sanitizer is already installed, or
                differential-oracle mode is requested on a machine whose
                caches already hold lines.
        """
        from ..sanitizer.invariants import Sanitizer, SanitizerConfig
        from ..sanitizer.oracle import attach_differential_oracle

        if self.sanitizer is not None:
            raise SimulationError("a sanitizer is already installed on this machine")
        if config is None:
            config = SanitizerConfig()
        if config.differential_oracle:
            attach_differential_oracle(self)
        sanitizer = Sanitizer(self, config)
        self.sanitizer = sanitizer
        if config.every_n_events is not None:
            inner = self.execute
            on_event = sanitizer.on_event

            def sanitized_execute(process, operation):
                result = inner(process, operation)
                on_event()
                return result

            # Instance attribute shadows the bound method, so both the
            # scheduler's hoisted reference and direct calls go through it.
            self.execute = sanitized_execute
        return sanitizer

    def sanitize(self, checkers=None) -> int:
        """Run one on-demand invariant sweep; returns checkers run.

        Uses the installed sanitizer when present (so clock-monotonicity
        marks persist), else a one-shot engine with default config.
        """
        if self.sanitizer is not None:
            return self.sanitizer.check(checkers)
        from ..sanitizer.invariants import Sanitizer

        return Sanitizer(self).check(checkers)

    def fingerprint(self) -> str:
        """Stable hash of architectural state (see :mod:`repro.sanitizer`)."""
        from ..sanitizer.fingerprint import machine_fingerprint

        return machine_fingerprint(self)

    def save_state(self):
        """Snapshot architectural state into a versioned, JSON-safe record."""
        from ..sanitizer.snapshot import save_state

        return save_state(self)

    def load_state(self, snapshot) -> None:
        """Restore a :meth:`save_state` snapshot (fingerprint-verified).

        The machine must have been rebuilt from the same seed/config;
        live processes are not restored — re-spawn remaining work after
        loading (see :mod:`repro.sanitizer.snapshot`).
        """
        from ..sanitizer.snapshot import load_state

        load_state(self, snapshot)

    @property
    def now(self) -> float:
        """Latest core-clock position (reference cycles)."""
        return max(clock.now for clock in self.clocks)

    # -- OperationExecutor ------------------------------------------------------

    def execute(self, process: SimProcess, operation: Operation) -> OpResult:
        """Price and apply one operation (scheduler callback)."""
        handler = self._op_handlers.get(operation.__class__)
        if handler is None:
            raise SimulationError(f"unknown operation {operation!r}")
        return handler(process, operation)

    def _execute_fence(self, process: SimProcess, operation: Fence) -> OpResult:
        return OpResult(self._mfence_cycles)

    def _execute_busy(self, process: SimProcess, operation: Busy) -> OpResult:
        cycles = float(operation.cycles)
        return OpResult(cycles if cycles > 0.0 else 0.0)

    def _execute_label(self, process: SimProcess, operation: Label) -> OpResult:
        if self.trace.enabled:
            self.trace.record(process.now, process.name, "label", operation.text)
        if self.sanitizer is not None:
            self.sanitizer.on_phase(operation.text)
        return OpResult(0.0)

    # -- memory path -------------------------------------------------------------

    def _execute_access(self, process: SimProcess, operation) -> OpResult:
        space: AddressSpace = process.address_space
        paddr = space.translate(operation.vaddr)
        protected = self.physical.is_protected(paddr)
        if protected:
            self._check_enclave_access(process, operation.vaddr)

        trace = self.trace
        level = self.hierarchy.access(process.clock.core_id, paddr)
        if level is not AccessLevel.MEMORY:
            if trace.enabled:
                outcome = AccessOutcome(level=level, paddr=paddr)
                trace.record(process.now, process.name, "access", outcome)
                return OpResult(self._hit_latency[level], outcome)
            return OpResult(self._hit_latency[level])

        latency = self._uncore_cycles + self.dram.sample()
        mee_result: Optional[MEEAccessResult] = None
        if protected:
            if self.pager is not None:
                latency += self._page_in(paddr)
            mee_result = self.mee.access(paddr, write=isinstance(operation, WriteOp))
            latency += mee_result.extra_cycles
        if trace.enabled:
            outcome = AccessOutcome(level=AccessLevel.MEMORY, paddr=paddr, mee=mee_result)
            trace.record(process.now, process.name, "access", outcome)
            return OpResult(latency, outcome)
        return OpResult(latency)

    def _page_in(self, paddr: int) -> float:
        """EPC paging: fault the page in; scrub an evicted page's metadata.

        An EWB'd page's integrity-tree lines are stale once the page
        leaves the EPC, so they are dropped from the MEE cache.
        """
        extra, evicted_frame = self.pager.touch(paddr)
        if evicted_frame is not None:
            self.scrub_page_metadata(evicted_frame)
        return extra

    def scrub_page_metadata(self, frame: int) -> None:
        """Drop a protected page's integrity-tree lines from the MEE cache.

        The EWB path and EPC-pressure fault injection both need this: once
        a page leaves the EPC its cached versions/PD-tag/L0 lines are stale.
        """
        layout = self.layout
        self.mee.cache.invalidate(layout.l0_line(frame))
        for unit in range(PAGE_SIZE // 512):
            chunk_addr = frame + unit * 512
            self.mee.cache.invalidate(layout.versions_line(chunk_addr))
            self.mee.cache.invalidate(layout.pd_tag_line(chunk_addr))

    def _check_enclave_access(self, process: SimProcess, vaddr: int) -> None:
        """Protected memory is only reachable from its owning enclave."""
        enclave = process.enclave
        if enclave is None:
            raise EnclaveError(
                f"process {process.name!r} touched protected memory at "
                f"{vaddr:#x} outside enclave mode"
            )
        if not enclave.owns(vaddr):
            raise EnclaveError(
                f"enclave {enclave.name!r} touched another enclave's memory "
                f"at {vaddr:#x}"
            )

    def _execute_flush(self, process: SimProcess, operation: Flush) -> OpResult:
        space: AddressSpace = process.address_space
        paddr = space.translate(operation.vaddr)
        self.hierarchy.flush(paddr)
        if self.trace.enabled:
            self.trace.record(process.now, process.name, "flush", paddr)
        return OpResult(latency=float(self.config.hierarchy.clflush_cycles))

    # -- timers ---------------------------------------------------------------------

    def _execute_rdtsc(self, process: SimProcess, operation: Rdtsc) -> OpResult:
        if process.in_enclave and not operation.via_ocall:
            raise InstructionNotAvailableError(
                f"rdtsc is not available in enclave mode "
                f"(process {process.name!r}; paper Section 3, challenge 4)"
            )
        cost = self.config.timers.rdtsc_cycles
        return OpResult(latency=float(cost), value=process.clock.tsc())

    def _execute_read_timer(
        self, process: SimProcess, operation: Optional[ReadTimer] = None
    ) -> OpResult:
        """Counter-thread timer read (Figure 2c): ~50 cycles, slightly stale."""
        timers = self.config.timers
        cost = timers.counter_thread_read_cycles + float(
            self._timer_rng.normal(0.0, 3.0)
        )
        staleness = float(self._timer_rng.uniform(0, timers.counter_thread_update_interval))
        value = int(max(process.clock.now - staleness, 0.0))
        return OpResult(latency=max(cost, 1.0), value=value)
