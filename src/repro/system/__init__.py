"""Whole-machine model: cores + hierarchy + MEE + DRAM + OS services.

:class:`~repro.system.machine.Machine` is the executor behind the
simulation kernel: it prices every operation a simulated process yields,
enforcing enclave-mode restrictions and routing protected accesses through
the MEE.  :mod:`~repro.system.noise` provides the stressor processes of
paper Figure 8 and :mod:`~repro.system.workload` the stride generators of
Figure 5.
"""

from .machine import AccessOutcome, Machine
from .noise import (
    ambient_system_noise,
    llc_memory_stressor,
    mee_stride_stressor,
)
from .workload import stride_access_pattern, stride_reader

__all__ = [
    "AccessOutcome",
    "Machine",
    "ambient_system_noise",
    "llc_memory_stressor",
    "mee_stride_stressor",
    "stride_access_pattern",
    "stride_reader",
]
