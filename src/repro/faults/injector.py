"""The fault injector: a scheduler-driven process that applies a plan.

The injector is an ordinary :class:`~repro.sim.process.SimProcess` whose
body busy-waits (on its own virtual clock, outside the core set) to each
event's timestamp and then mutates machine state: stealing cycles from a
core's clock, re-pinning processes, scrubbing MEE metadata, registering
DRAM stressors, re-clocking cores.  Because the scheduler interleaves it
in global-time order with every other process, faults land at their
scheduled simulated time regardless of how many processes run or how the
trial is parallelized — the property the replay tests pin down.

Durative faults (``dram_spike``, ``dvfs``) compile to a start and an end
action; overlapping episodes on the same resource are applied in timestamp
order (a later ``dvfs`` start overrides an active one, and the earliest
end restores nominal — real governors are no kinder).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

import numpy as np

from ..errors import FaultError
from ..sim.ops import Busy, Operation, OpResult
from ..sim.process import ProcessState
from ..units import PAGE_SIZE
from .plan import FaultEvent, FaultPlan

__all__ = ["FaultLogEntry", "FaultInjector"]

#: cycles a migrated thread loses to the scheduler + cold-start penalty
MIGRATION_COST_CYCLES = 5_000.0


@dataclass(frozen=True)
class FaultLogEntry:
    """One applied fault: when it actually fired and what it did."""

    at_cycle: float
    kind: str
    detail: str


@dataclass
class _Action:
    """One compiled timeline step (start or end of an event)."""

    at_cycle: float
    order: int
    event: FaultEvent
    phase: str  # "start" | "end"


class FaultInjector:
    """Applies a :class:`FaultPlan` to a machine from inside the scheduler.

    Built via :meth:`repro.system.machine.Machine.inject_faults`; not
    usually constructed directly.  After the run, :attr:`log` holds every
    applied fault and :meth:`stolen_cycles` / :attr:`counts` summarize the
    damage for degradation metrics.
    """

    def __init__(self, machine, plan: FaultPlan, strict: bool = False):
        plan.validate_for(machine.config.cores)
        self.machine = machine
        self.plan = plan
        self.strict = strict
        self.log: List[FaultLogEntry] = []
        #: applied events per fault kind
        self.counts: Dict[str, int] = {}
        #: faults that could not take effect (see :meth:`_fault_error`);
        #: empty after a clean run — check it, or pass ``strict=True``
        self.errors: List[FaultError] = []
        self._stolen = 0.0
        self._rng = np.random.default_rng(
            np.random.SeedSequence(
                [0xFA17, int(machine.config.seed), int(plan.seed or 0)]
            )
        )
        self._actions = self._compile(plan)

    @staticmethod
    def _compile(plan: FaultPlan) -> List[_Action]:
        actions: List[_Action] = []
        for order, event in enumerate(plan.events):
            if event.kind in ("dram_spike", "dvfs"):
                actions.append(_Action(event.at_cycle, order, event, "start"))
                actions.append(
                    _Action(event.at_cycle + event.duration_cycles, order, event, "end")
                )
            else:
                actions.append(_Action(event.at_cycle, order, event, "start"))
        actions.sort(key=lambda a: (a.at_cycle, a.order, a.phase))
        return actions

    # -- summary ----------------------------------------------------------

    def stolen_cycles(self) -> float:
        """Total core cycles consumed by preempt/stall/aex faults."""
        return self._stolen

    def _record(self, at: float, kind: str, detail: str) -> None:
        self.log.append(FaultLogEntry(at_cycle=at, kind=kind, detail=detail))
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def _fault_error(self, at: float, kind: str, detail: str) -> None:
        """A scheduled fault that had nothing to act on.

        Historically this was a silent no-op, which made fault plans lie:
        a sweep could report "N faults injected" while some of them hit
        nothing (every target process already finished or cancelled).  Now
        it is always visible — a typed :class:`FaultError` raised under
        ``strict=True``, otherwise collected in :attr:`errors` and logged
        as a ``<kind>_noop`` entry.
        """
        error = FaultError(f"{kind} fault at cycle {at:.0f} had no effect: {detail}")
        if self.strict:
            raise error
        self.errors.append(error)
        self._record(at, f"{kind}_noop", detail)

    # -- the event source -------------------------------------------------

    def body(self, start_cycle: float = 0.0) -> Generator[Operation, OpResult, int]:
        """Process body: wait to each action's time, apply it.

        Args:
            start_cycle: the injector clock's position when spawned; event
                times at or before it fire immediately.

        Returns:
            Number of applied actions.
        """
        now = float(start_cycle)
        applied = 0
        for action in self._actions:
            delay = action.at_cycle - now
            if delay > 0:
                result = yield Busy(delay)
                now += result.latency
                # The scheduler executes an op and resumes the generator in
                # the same step, so without a barrier this body would apply
                # the action while the global timeline still sits at the
                # *previous* action's pop time.  A zero-length op re-enters
                # the heap at the action's own timestamp, so the apply below
                # runs only once every other process has caught up to it.
                yield Busy(0.0)
            self._apply(action)
            applied += 1
        return applied

    # -- application ------------------------------------------------------

    def _apply(self, action: _Action) -> None:
        event = action.event
        handler = getattr(self, f"_apply_{event.kind}", None)
        if handler is None:
            raise FaultError(f"no handler for fault kind {event.kind!r}")
        handler(event, action.phase)

    def _steal(self, event: FaultEvent, label: str) -> None:
        clock = self.machine.clocks[event.core]
        clock.now += event.duration_cycles
        clock.interrupt_cycles += event.duration_cycles
        self._stolen += event.duration_cycles
        self._record(
            clock.now, label, f"core {event.core} lost {event.duration_cycles:.0f} cycles"
        )

    def _apply_preempt(self, event: FaultEvent, phase: str) -> None:
        self._steal(event, "preempt")

    def _apply_stall(self, event: FaultEvent, phase: str) -> None:
        self._steal(event, "stall")

    def _apply_aex(self, event: FaultEvent, phase: str) -> None:
        # Exit + SSA writeback + resume: time stolen like a preemption,
        # plus the core's private L1 is polluted by the handler.
        self.machine.hierarchy.flush_core(event.core)
        self._steal(event, "aex")

    def _apply_migrate(self, event: FaultEvent, phase: str) -> None:
        machine = self.machine
        source = machine.clocks[event.core]
        target = machine.clocks[event.target_core]
        moved = 0
        for process in machine.scheduler.processes:
            if process.clock is not source:
                continue
            if process.state in (
                ProcessState.FINISHED,
                ProcessState.FAILED,
                ProcessState.CANCELLED,
            ):
                continue
            # The thread resumes on the target core no earlier than where it
            # was, pays the migration penalty, and finds cold private caches.
            target.now = max(target.now, source.now) + MIGRATION_COST_CYCLES
            process.clock = target
            moved += 1
        if moved == 0:
            self._fault_error(
                source.now,
                "migrate",
                f"no live process on core {event.core} (all finished, failed, "
                "or cancelled — nothing to move to "
                f"core {event.target_core})",
            )
            return
        self._record(
            source.now,
            "migrate",
            f"{moved} process(es) core {event.core} -> {event.target_core}",
        )

    def _apply_epc_evict(self, event: FaultEvent, phase: str) -> None:
        machine = self.machine
        frames: List[int] = []
        if machine.pager is not None:
            frames = machine.pager.evict_burst(event.pages)
        if not frames:
            # No pager (or empty resident set): model *other* enclaves'
            # pages being evicted — random protected frames lose their
            # cached integrity metadata, scrubbing shared MEE-cache sets.
            base = machine.physical.protected_base
            frame_count = machine.config.mee_region_bytes // PAGE_SIZE
            picks = self._rng.integers(0, frame_count, size=event.pages)
            frames = [base + int(index) * PAGE_SIZE for index in picks]
        for frame in frames:
            machine.scrub_page_metadata(frame)
        self._record(
            machine.now, "epc_evict", f"evicted {len(frames)} page(s) of metadata"
        )

    def _apply_dram_spike(self, event: FaultEvent, phase: str) -> None:
        dram = self.machine.dram
        if phase == "start":
            for _ in range(event.magnitude):
                dram.register_stressor()
            self._record(
                self.machine.now, "dram_spike", f"+{event.magnitude} bus stressors"
            )
        else:
            for _ in range(event.magnitude):
                dram.unregister_stressor()

    def _apply_dvfs(self, event: FaultEvent, phase: str) -> None:
        clock = self.machine.clocks[event.core]
        if phase == "start":
            clock.set_rate_scale(event.scale)
            self._record(
                clock.now, "dvfs", f"core {event.core} re-clocked x{event.scale:.3f}"
            )
        else:
            clock.set_rate_scale(1.0)
