"""Deterministic fault injection for the simulated machine.

The paper evaluates the channel on a quiet machine and under memory
stressors (Figure 8); real SGX attacks additionally fight OS preemption,
AEX storms (CacheZoom), EPC paging and clock-rate changes.  This package
drives those adversities into the simulation as data:

* :mod:`~repro.faults.plan` — :class:`FaultPlan`, a seeded, replayable
  schedule of :class:`FaultEvent` s (preemption, core migration, AEX,
  EPC-eviction bursts, DRAM latency spikes, DVFS jitter, trojan stalls);
* :mod:`~repro.faults.injector` — the injector process that the scheduler
  runs like any other event source, applying each event at its simulated
  time and logging what it did.

Plans are pure functions of their parameters, so a trial with a plan is
exactly as reproducible as one without: same seed, same bits.
"""

from .plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    aex_storm,
    dram_spike_train,
    dvfs_jitter,
    epc_pressure,
    migration_shuffle,
    preemption_storm,
    trojan_stalls,
)
from .injector import FaultInjector, FaultLogEntry

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultLogEntry",
    "FaultPlan",
    "aex_storm",
    "dram_spike_train",
    "dvfs_jitter",
    "epc_pressure",
    "migration_shuffle",
    "preemption_storm",
    "trojan_stalls",
]
