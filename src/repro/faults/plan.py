"""Fault plans: seeded, replayable schedules of machine adversity.

A :class:`FaultPlan` is an ordered tuple of :class:`FaultEvent` s plus the
seed that generated it.  Plans are plain data — they can be serialized to
JSON (archived next to sweep results), diffed, and replayed bit-for-bit;
the :mod:`~repro.faults.injector` turns them into scheduler activity.

Fault kinds
-----------

``preempt``
    The OS steals ``duration_cycles`` from ``core`` (timer tick, RCU,
    another runqueue task).  Whatever process is pinned there loses the
    time; with absolute-deadline busy-waits this slips one-or-few protocol
    windows, the paper's own interrupt error mechanism, but at storm rates.
``stall``
    Same mechanics as ``preempt`` but long (tens of windows) and isolated:
    the trojan's host thread is descheduled outright.  Kept as its own
    kind so degradation metrics can attribute it separately.
``aex``
    Asynchronous Enclave Exit on ``core`` (CacheZoom's weapon): the
    enclave thread is kicked out, its SSA frame written back, and the
    core's private L1 polluted; re-entry costs ``duration_cycles``.
``migrate``
    The scheduler moves every process pinned to ``core`` onto
    ``target_core`` (cold private caches, one-off migration penalty).
``epc_evict``
    Kernel EPC pressure: ``pages`` protected pages are evicted (EWB).
    Their integrity-tree metadata leaves the MEE cache — other tenants'
    paging traffic scrubbing the channel's working set.
``dram_spike``
    ``magnitude`` extra bus stressors' worth of DRAM contention for
    ``duration_cycles`` (membw burst, refresh storm, thermal throttle of
    the memory controller).
``dvfs``
    The governor re-clocks ``core`` by ``scale`` (e.g. 0.8 = 20% slower)
    for ``duration_cycles``; trojan and spy windows drift apart at rates
    far above the ppm crystal skew the protocol was tuned for.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import FaultError

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "preemption_storm",
    "trojan_stalls",
    "aex_storm",
    "migration_shuffle",
    "epc_pressure",
    "dram_spike_train",
    "dvfs_jitter",
]

#: every fault kind the injector knows how to apply
FAULT_KINDS = (
    "preempt",
    "stall",
    "aex",
    "migrate",
    "epc_evict",
    "dram_spike",
    "dvfs",
)

#: kinds that need a duration
_DURATIVE = {"preempt", "stall", "aex", "dram_spike", "dvfs"}
#: kinds that act on a specific core
_CORE_TARGETED = {"preempt", "stall", "aex", "migrate", "dvfs"}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled adversity.

    Attributes:
        at_cycle: reference-timeline cycle the fault fires at.
        kind: one of :data:`FAULT_KINDS`.
        core: targeted core for core-targeted kinds (ignored otherwise).
        duration_cycles: how long the fault lasts (stolen cycles for
            ``preempt``/``stall``/``aex``, modifier lifetime for
            ``dram_spike``/``dvfs``).
        target_core: destination core for ``migrate``.
        pages: pages evicted by ``epc_evict``.
        magnitude: stressor count for ``dram_spike``.
        scale: clock-rate multiplier for ``dvfs``.
    """

    at_cycle: float
    kind: str
    core: int = 0
    duration_cycles: float = 0.0
    target_core: Optional[int] = None
    pages: int = 0
    magnitude: int = 1
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(f"unknown fault kind {self.kind!r}")
        if self.at_cycle < 0:
            raise FaultError(f"fault time must be non-negative, got {self.at_cycle}")
        if self.kind in _DURATIVE and self.duration_cycles <= 0:
            raise FaultError(f"{self.kind} fault needs a positive duration")
        if self.kind == "migrate" and self.target_core is None:
            raise FaultError("migrate fault needs a target_core")
        if self.kind == "epc_evict" and self.pages < 1:
            raise FaultError("epc_evict fault needs pages >= 1")
        if self.kind == "dvfs" and self.scale <= 0:
            raise FaultError("dvfs scale must be positive")

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (used when archiving sweep results)."""
        return asdict(self)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, replayable fault schedule.

    Build one from the storm helpers below, combine plans with
    :meth:`merged`, and hand the result to
    :meth:`repro.system.machine.Machine.inject_faults`.  Equality is
    structural, so two plans built from the same parameters compare equal —
    the property the serial-vs-parallel determinism tests rely on.
    """

    events: Tuple[FaultEvent, ...] = ()
    #: seed the plan was generated from (bookkeeping; None for hand-built)
    seed: Optional[int] = None
    #: human-readable description for logs and archives
    label: str = ""

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: (e.at_cycle, e.kind, e.core)))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def validate_for(self, cores: int) -> None:
        """Raise :class:`FaultError` if any event targets a missing core."""
        for event in self.events:
            if event.kind in _CORE_TARGETED and not 0 <= event.core < cores:
                raise FaultError(
                    f"{event.kind} fault targets core {event.core}, "
                    f"machine has {cores}"
                )
            if event.kind == "migrate" and not 0 <= event.target_core < cores:
                raise FaultError(
                    f"migrate fault targets core {event.target_core}, "
                    f"machine has {cores}"
                )

    def merged(self, other: "FaultPlan") -> "FaultPlan":
        """Union of two plans (events re-sorted by time)."""
        label = " + ".join(part for part in (self.label, other.label) if part)
        return FaultPlan(events=self.events + other.events, seed=self.seed, label=label)

    def shifted(self, offset_cycles: float) -> "FaultPlan":
        """The same plan, ``offset_cycles`` later (e.g. past channel setup)."""
        moved = tuple(
            FaultEvent(**{**event.to_dict(), "at_cycle": event.at_cycle + offset_cycles})
            for event in self.events
        )
        return FaultPlan(events=moved, seed=self.seed, label=self.label)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form."""
        return {
            "seed": self.seed,
            "label": self.label,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        events = tuple(FaultEvent(**event) for event in data.get("events", ()))
        return cls(events=events, seed=data.get("seed"), label=data.get("label", ""))


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence([0xFA017, int(seed)]))


def _poisson_times(
    rng: np.random.Generator, start: float, duration: float, rate_per_cycle: float
) -> List[float]:
    """Poisson arrival times in [start, start+duration)."""
    if rate_per_cycle <= 0 or duration <= 0:
        return []
    times: List[float] = []
    t = start
    while True:
        t += float(rng.exponential(1.0 / rate_per_cycle))
        if t >= start + duration:
            return times
        times.append(t)


def preemption_storm(
    seed: int,
    core: int,
    start_cycle: float,
    duration_cycles: float,
    rate_per_cycle: float,
    stall_min_cycles: float = 12_000.0,
    stall_max_cycles: float = 24_000.0,
) -> FaultPlan:
    """Poisson preemptions of ``core``, stall lengths uniform in a band.

    The band (rather than an exponential) models OS scheduling slices,
    which cluster around the tick length instead of spreading over decades.
    """
    rng = _rng(seed)
    events = tuple(
        FaultEvent(
            at_cycle=t,
            kind="preempt",
            core=core,
            duration_cycles=float(rng.uniform(stall_min_cycles, stall_max_cycles)),
        )
        for t in _poisson_times(rng, start_cycle, duration_cycles, rate_per_cycle)
    )
    return FaultPlan(events=events, seed=seed, label=f"preempt-storm(core={core})")


def trojan_stalls(
    seed: int,
    core: int,
    start_cycle: float,
    duration_cycles: float,
    count: int,
    stall_cycles: float = 400_000.0,
) -> FaultPlan:
    """``count`` long stalls of the trojan's core, evenly spread with jitter."""
    if count < 1:
        return FaultPlan(seed=seed, label="stalls(none)")
    rng = _rng(seed)
    spacing = duration_cycles / count
    events = tuple(
        FaultEvent(
            at_cycle=start_cycle + (i + 0.5) * spacing + float(rng.uniform(-0.2, 0.2) * spacing),
            kind="stall",
            core=core,
            duration_cycles=stall_cycles,
        )
        for i in range(count)
    )
    return FaultPlan(events=events, seed=seed, label=f"stalls(core={core}, n={count})")


def aex_storm(
    seed: int,
    core: int,
    start_cycle: float,
    duration_cycles: float,
    rate_per_cycle: float,
    exit_cycles: float = 8_000.0,
) -> FaultPlan:
    """CacheZoom-style AEX train against the enclave thread on ``core``."""
    rng = _rng(seed)
    events = tuple(
        FaultEvent(at_cycle=t, kind="aex", core=core, duration_cycles=exit_cycles)
        for t in _poisson_times(rng, start_cycle, duration_cycles, rate_per_cycle)
    )
    return FaultPlan(events=events, seed=seed, label=f"aex-storm(core={core})")


def migration_shuffle(
    seed: int,
    cores: Iterable[Tuple[int, int]],
    start_cycle: float,
    duration_cycles: float,
    count: int,
) -> FaultPlan:
    """``count`` migrations drawn from the (from, to) pairs in ``cores``."""
    pairs = list(cores)
    if not pairs or count < 1:
        return FaultPlan(seed=seed, label="migrations(none)")
    rng = _rng(seed)
    events = tuple(
        FaultEvent(
            at_cycle=start_cycle + float(rng.uniform(0.0, duration_cycles)),
            kind="migrate",
            core=pairs[int(rng.integers(len(pairs)))][0],
            target_core=pairs[int(rng.integers(len(pairs)))][1],
        )
        for _ in range(count)
    )
    return FaultPlan(events=events, seed=seed, label="migrations")


def epc_pressure(
    seed: int,
    start_cycle: float,
    duration_cycles: float,
    burst_rate_per_cycle: float,
    pages_per_burst: int = 32,
) -> FaultPlan:
    """Bursts of kernel EPC paging scrubbing MEE-cache metadata."""
    rng = _rng(seed)
    events = tuple(
        FaultEvent(at_cycle=t, kind="epc_evict", pages=pages_per_burst)
        for t in _poisson_times(rng, start_cycle, duration_cycles, burst_rate_per_cycle)
    )
    return FaultPlan(events=events, seed=seed, label="epc-pressure")


def dram_spike_train(
    seed: int,
    start_cycle: float,
    duration_cycles: float,
    rate_per_cycle: float,
    spike_cycles: float = 300_000.0,
    magnitude: int = 4,
) -> FaultPlan:
    """Poisson DRAM-contention spikes (bus bursts from other tenants)."""
    rng = _rng(seed)
    events = tuple(
        FaultEvent(
            at_cycle=t,
            kind="dram_spike",
            duration_cycles=spike_cycles,
            magnitude=magnitude,
        )
        for t in _poisson_times(rng, start_cycle, duration_cycles, rate_per_cycle)
    )
    return FaultPlan(events=events, seed=seed, label="dram-spikes")


def dvfs_jitter(
    seed: int,
    core: int,
    start_cycle: float,
    duration_cycles: float,
    rate_per_cycle: float,
    scale_low: float = 0.85,
    scale_high: float = 1.1,
    episode_cycles: float = 500_000.0,
) -> FaultPlan:
    """Governor re-clocks ``core`` to a random scale for short episodes."""
    rng = _rng(seed)
    events = tuple(
        FaultEvent(
            at_cycle=t,
            kind="dvfs",
            core=core,
            duration_cycles=episode_cycles,
            scale=float(rng.uniform(scale_low, scale_high)),
        )
        for t in _poisson_times(rng, start_cycle, duration_cycles, rate_per_cycle)
    )
    return FaultPlan(events=events, seed=seed, label=f"dvfs(core={core})")
