"""Integrity-tree bookkeeping: counters per node, root in SRAM.

The tree guarantees freshness: each node stores, per child, the counter it
last authenticated; a child is fresh when its embedded counter matches the
parent's record, up to a root held in on-die SRAM.  We track counters
functionally (so writes propagate and tamper/replay detection is real in
tests) while the *performance* behaviour — which levels touch DRAM — is
decided by the MEE cache inside :mod:`repro.mee.engine`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import IntegrityError
from .layout import HIT_LEVEL_NAMES, MEELayout, TreeNode

__all__ = ["IntegrityTree"]

#: sentinel "parent line" for the SRAM root
_ROOT = -1


class IntegrityTree:
    """Counter state for every tree node, with verify/update operations."""

    def __init__(self, layout: MEELayout):
        self.layout = layout
        #: node line address -> counter embedded in the node itself
        self._node_counters: Dict[int, int] = {}
        #: (parent line or _ROOT, child line) -> counter the parent recorded
        self._parent_records: Dict[Tuple[int, int], int] = {}
        self.verifications = 0
        self.updates = 0

    # -- reads -----------------------------------------------------------------

    def verify_path(self, paddr: int, up_to_level: int) -> List[TreeNode]:
        """Verify the walk for ``paddr`` from the leaf up to ``up_to_level``.

        ``up_to_level`` is the level that *hit* in the MEE cache (a cached
        node is by definition already verified, so checking stops there;
        paper Section 2.2).  Level 4 means the walk reached the SRAM root.

        Returns the list of nodes that were verified against their parents.

        Raises:
            IntegrityError: when a node's counter disagrees with its
                parent's record — a tamper or replay.
        """
        nodes = self.layout.walk_nodes(paddr)
        verified: List[TreeNode] = []
        for node in nodes:
            if node.level >= up_to_level:
                break
            parent_line = (
                nodes[node.level + 1].line_addr if node.level + 1 < len(nodes) else _ROOT
            )
            recorded = self._parent_records.get((parent_line, node.line_addr), 0)
            own = self._node_counters.get(node.line_addr, 0)
            if own != recorded:
                raise IntegrityError(
                    f"freshness violation at {HIT_LEVEL_NAMES[node.level]} "
                    f"node {node.line_addr:#x}: counter {own} != recorded {recorded}"
                )
            verified.append(node)
            self.verifications += 1
        return verified

    # -- writes ----------------------------------------------------------------

    def update_path(self, paddr: int) -> None:
        """Propagate a write: bump each node counter leaf-to-root and update
        every parent's record of its freshly-bumped child."""
        nodes = self.layout.walk_nodes(paddr)
        for node in nodes:
            new_value = self._node_counters.get(node.line_addr, 0) + 1
            self._node_counters[node.line_addr] = new_value
            parent_line = (
                nodes[node.level + 1].line_addr if node.level + 1 < len(nodes) else _ROOT
            )
            self._parent_records[(parent_line, node.line_addr)] = new_value
            self.updates += 1

    # -- tamper surface for tests ------------------------------------------------

    def corrupt_node(self, line_addr: int) -> None:
        """Desynchronize one node's counter (simulated DRAM tamper)."""
        self._node_counters[line_addr] = self._node_counters.get(line_addr, 0) + 7

    def replay_node(self, line_addr: int) -> None:
        """Roll one node's counter back (simulated replay of stale DRAM).

        Raises:
            IntegrityError: when the node was never written.
        """
        current = self._node_counters.get(line_addr, 0)
        if current == 0:
            raise IntegrityError("cannot replay a never-written node")
        self._node_counters[line_addr] = current - 1

    def node_counter(self, line_addr: int) -> int:
        """Current counter of a node (tests/diagnostics)."""
        return self._node_counters.get(line_addr, 0)

    def recorded_counters(self) -> Dict[int, int]:
        """child line -> counter its parent recorded (checkers, tests).

        Each node has exactly one parent in the tree, so the flattened view
        loses nothing; nodes never written have no entry (counter 0).
        """
        return {
            child: counter
            for (_parent, child), counter in self._parent_records.items()
        }

    # -- snapshot ----------------------------------------------------------------

    def export_state(self) -> dict:
        """JSON-safe snapshot of all counters and parent records."""
        return {
            "node_counters": {
                str(line): counter for line, counter in self._node_counters.items()
            },
            "parent_records": {
                f"{parent}:{child}": counter
                for (parent, child), counter in self._parent_records.items()
            },
            "verifications": self.verifications,
            "updates": self.updates,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`export_state`."""
        self._node_counters = {
            int(line): int(counter)
            for line, counter in state["node_counters"].items()
        }
        self._parent_records = {}
        for key, counter in state["parent_records"].items():
            parent, _, child = key.partition(":")
            self._parent_records[(int(parent), int(child))] = int(counter)
        self.verifications = int(state["verifications"])
        self.updates = int(state["updates"])
