"""Functional model of the MEE's cryptography.

The covert channel never depends on cryptographic strength — only on which
integrity-tree lines are cached — but a reproduction of the *system* should
still encrypt, MAC and version-check like the real engine (Gueron, "A
Memory Encryption Engine Suitable for General Purpose Processors").  We
implement counter-mode encryption and MAC tags with :mod:`hashlib`
(BLAKE2b) keyed primitives: functional, deterministic, and able to detect
tampering and replay in tests.
"""

from __future__ import annotations

import hashlib
from typing import Dict

from ..errors import IntegrityError
from ..units import CACHE_LINE

__all__ = ["MEECrypto"]

_COUNTER_BITS = 56  # the real MEE uses 56-bit version counters


class MEECrypto:
    """Counter-mode encryption + MAC over 64 B lines.

    State kept per protected line address:

    * ``counter`` — the version counter (part of the compound nonce),
      incremented on every write;
    * ``tag`` — the MAC over (ciphertext, address, counter), stored
      conceptually in the PD_Tag line.
    """

    def __init__(self, key: bytes = b"mee-reproduction-key"):
        self._key = hashlib.blake2b(key, digest_size=32).digest()
        self._counters: Dict[int, int] = {}
        self._tags: Dict[int, bytes] = {}

    # -- primitives ----------------------------------------------------------

    def _keystream(self, line_addr: int, counter: int) -> bytes:
        """64 B keystream from (key, address, counter) — the compound nonce."""
        nonce = line_addr.to_bytes(8, "little") + counter.to_bytes(8, "little")
        stream = b""
        block = 0
        while len(stream) < CACHE_LINE:
            stream += hashlib.blake2b(
                nonce + block.to_bytes(4, "little"), key=self._key, digest_size=32
            ).digest()
            block += 1
        return stream[:CACHE_LINE]

    def _mac(self, line_addr: int, counter: int, ciphertext: bytes) -> bytes:
        """56-bit-truncated MAC tag (the real PD_Tag stores 56-bit MACs)."""
        material = (
            line_addr.to_bytes(8, "little")
            + counter.to_bytes(8, "little")
            + ciphertext
        )
        return hashlib.blake2b(material, key=self._key, digest_size=7).digest()

    # -- line operations -------------------------------------------------------

    def counter_of(self, line_addr: int) -> int:
        """Current version counter for a line (0 before first write)."""
        return self._counters.get(line_addr, 0)

    def encrypt_line(self, line_addr: int, plaintext: bytes) -> bytes:
        """Encrypt a 64 B write: bump the counter, produce ciphertext + tag."""
        if len(plaintext) != CACHE_LINE:
            raise ValueError(f"lines are {CACHE_LINE} B, got {len(plaintext)}")
        counter = (self.counter_of(line_addr) + 1) % (1 << _COUNTER_BITS)
        self._counters[line_addr] = counter
        stream = self._keystream(line_addr, counter)
        ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
        self._tags[line_addr] = self._mac(line_addr, counter, ciphertext)
        return ciphertext

    def decrypt_line(self, line_addr: int, ciphertext: bytes) -> bytes:
        """Decrypt a 64 B read, verifying MAC and freshness.

        Raises:
            IntegrityError: on a bad tag (tampered data) or an unknown line
                being presented with a non-zero counter (replay).
        """
        if len(ciphertext) != CACHE_LINE:
            raise ValueError(f"lines are {CACHE_LINE} B, got {len(ciphertext)}")
        counter = self.counter_of(line_addr)
        expected = self._tags.get(line_addr)
        if expected is None:
            raise IntegrityError(f"no tag recorded for line {line_addr:#x}")
        actual = self._mac(line_addr, counter, ciphertext)
        if actual != expected:
            raise IntegrityError(
                f"MAC mismatch for line {line_addr:#x}: data tampered or replayed"
            )
        stream = self._keystream(line_addr, counter)
        return bytes(c ^ s for c, s in zip(ciphertext, stream))

    # -- attack-surface helpers (used by tests) --------------------------------

    def tamper_tag(self, line_addr: int) -> None:
        """Corrupt the stored tag, simulating a DRAM tamper (tests only)."""
        tag = self._tags.get(line_addr, b"\x00" * 7)
        self._tags[line_addr] = bytes((tag[0] ^ 0xFF,)) + tag[1:]

    def replay_counter(self, line_addr: int) -> None:
        """Roll a counter back by one, simulating a replay attack (tests)."""
        current = self.counter_of(line_addr)
        if current == 0:
            raise IntegrityError("cannot replay a never-written line")
        self._counters[line_addr] = current - 1
