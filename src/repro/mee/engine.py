"""The Memory Encryption Engine: tree walk, MEE cache, latency accounting.

Every DRAM access to the protected data region enters here.  The engine
walks the integrity tree leaf-to-root, probing the MEE cache at each level
and **stopping at the first hit** (a cached node was already verified —
paper Section 2.2).  The versions node is therefore checked on *every*
protected access, which is exactly why the paper builds its channel on
versions data (Section 3, challenge 2).

Latency contract: the machine model pays ``uncore + DRAM(data)`` for the
data line itself; this engine returns the *additional* cycles — decrypt +
MAC (``mee_base_cycles``) plus one ``level_miss_cycles`` entry per missed
tree level (node fetch + verification), with per-node jitter and DRAM
contention applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..config import MEECacheConfig, MEELatencyConfig
from ..mem.cache import SetAssociativeCache
from ..mem.dram import DRAMModel
from .layout import HIT_LEVEL_NAMES, MEELayout, TreeNode
from .tree import IntegrityTree

__all__ = ["MEEAccessResult", "MemoryEncryptionEngine"]


@dataclass(frozen=True, slots=True)
class MEEAccessResult:
    """Outcome of one protected-region access through the MEE.

    Attributes:
        hit_level: tree level that first hit in the MEE cache — 0 means a
            versions hit, 4 means the walk reached the SRAM root.
        extra_cycles: cycles beyond the plain uncore + DRAM data fetch.
        nodes_fetched: tree nodes that missed and were loaded from DRAM.
        evicted_lines: metadata line addresses pushed out of the MEE cache
            by this access's fills.
    """

    hit_level: int
    extra_cycles: float
    nodes_fetched: tuple = ()
    evicted_lines: tuple = ()

    @property
    def hit_level_name(self) -> str:
        return HIT_LEVEL_NAMES[self.hit_level]


@dataclass
class _EngineStats:
    """Aggregate behaviour counters."""

    accesses: int = 0
    hit_level_counts: List[int] = field(default_factory=lambda: [0] * 5)

    def record(self, hit_level: int) -> None:
        self.accesses += 1
        self.hit_level_counts[hit_level] += 1


class MemoryEncryptionEngine:
    """MEE cache + integrity tree walk + latency model."""

    #: per-missed-node latency jitter (pipeline/queueing variation), cycles
    NODE_JITTER_SIGMA = 8.0

    def __init__(
        self,
        layout: MEELayout,
        cache_config: MEECacheConfig,
        latency_config: MEELatencyConfig,
        dram: DRAMModel,
        rng: np.random.Generator,
        tree: Optional[IntegrityTree] = None,
    ):
        self.layout = layout
        self.cache_config = cache_config
        self.latency = latency_config
        self.dram = dram
        self._rng = rng
        self.tree = tree if tree is not None else IntegrityTree(layout)
        self.cache = SetAssociativeCache(cache_config.as_geometry(), rng=rng)
        self.stats = _EngineStats()

    # -- the hot path --------------------------------------------------------

    def access(self, paddr: int, write: bool = False) -> MEEAccessResult:
        """Process one protected-region access.

        Args:
            paddr: physical address inside the protected data region.
            write: True for stores — version counters are bumped and the
                tree path updated before verification.

        Returns:
            The :class:`MEEAccessResult`, including the extra latency.
        """
        nodes = self.layout.walk_nodes(paddr)
        if write:
            self.tree.update_path(paddr)

        hit_level = len(nodes)  # reached SRAM root if nothing below hits
        fetched: List[TreeNode] = []
        evicted: List[int] = []
        lookups = 0
        cache = self.cache
        for node in nodes:
            lookups += 1
            result = cache.access(node.line_addr)
            if result.hit:
                hit_level = node.level
                break
            fetched.append(node)
            if result.evicted is not None:
                evicted.append(result.evicted.line_addr)
            if node.level == 0:
                # Versions and PD_Tag travel together: co-fetch the MAC line
                # into its (even) set.
                pd_evicted = cache.fill(self.layout.pd_tag_line(paddr))
                if pd_evicted is not None:
                    evicted.append(pd_evicted.line_addr)

        # A cached node is pre-verified; check freshness only below the hit.
        self.tree.verify_path(paddr, up_to_level=hit_level)

        extra = self._extra_cycles(hit_level, lookups)
        self.stats.record(hit_level)
        return MEEAccessResult(
            hit_level=hit_level,
            extra_cycles=extra,
            nodes_fetched=tuple(fetched),
            evicted_lines=tuple(evicted),
        )

    def _extra_cycles(self, hit_level: int, lookups: int) -> float:
        """Latency beyond the plain data fetch (see module docstring)."""
        extra = self.latency.mee_base_cycles
        extra += lookups * self.cache_config.lookup_cycles
        contention = self.dram.mean_latency - self.dram.config.access_cycles
        for level in range(hit_level):
            extra += self.latency.level_miss_cycles[level]
            extra += contention
            extra += self._rng.normal(0.0, self.NODE_JITTER_SIGMA)
        return max(extra, self.latency.mee_base_cycles * 0.5)

    # -- snapshot -------------------------------------------------------------

    def export_state(self) -> dict:
        """JSON-safe snapshot of the MEE cache, tree and counters."""
        return {
            "cache": self.cache.export_state(),
            "tree": self.tree.export_state(),
            "stats": {
                "accesses": self.stats.accesses,
                "hit_level_counts": list(self.stats.hit_level_counts),
            },
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`export_state`."""
        self.cache.restore_state(state["cache"])
        self.tree.restore_state(state["tree"])
        stats = state["stats"]
        self.stats = _EngineStats(
            accesses=int(stats["accesses"]),
            hit_level_counts=[int(c) for c in stats["hit_level_counts"]],
        )

    # -- oracles for tests and ground-truth validation ------------------------

    def versions_cached(self, paddr: int) -> bool:
        """True when the versions node guarding ``paddr`` is in the MEE cache.

        Ground-truth oracle — the attack itself never calls this; it must
        infer cache state from latency like on real hardware.
        """
        return self.cache.contains(self.layout.versions_line(paddr))

    def expected_latency(self, hit_level: int) -> float:
        """Mean *total* access latency for a given hit level (cycles)."""
        walk = self.latency.expected_latency(self.dram.mean_latency, hit_level)
        return walk + (hit_level + 1) * self.cache_config.lookup_cycles
