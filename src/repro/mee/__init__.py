"""Memory Encryption Engine substrate.

Implements the hardware the paper attacks: the integrity-tree metadata
layout (versions nodes interleaved with PD_Tag lines — odd vs. even MEE
cache sets, paper Figure 3), counter-mode encryption with MACs, the tree
walk with stop-on-hit semantics (Section 2.2), and the MEE cache itself
(ground truth 64 KB / 8-way / 128 sets, which Section 4's algorithms must
rediscover).
"""

from .crypto import MEECrypto
from .engine import MEEAccessResult, MemoryEncryptionEngine
from .layout import HIT_LEVEL_NAMES, MEELayout, TreeNode
from .tree import IntegrityTree

__all__ = [
    "HIT_LEVEL_NAMES",
    "IntegrityTree",
    "MEEAccessResult",
    "MEECrypto",
    "MEELayout",
    "MemoryEncryptionEngine",
    "TreeNode",
]
