"""Integrity-tree metadata layout: where each node lives in physical memory.

This module encodes the reproduction's *ground truth* for the structure the
paper reverse engineers:

* one 64 B **versions** node per 512 B protected chunk (8 counters, one per
  data line);
* versions and **PD_Tag** (MAC metadata) lines interleaved so that versions
  occupy **odd** MEE-cache sets and PD_Tags **even** sets (paper §4.1 /
  Figure 3): for page frame ``f`` and chunk offset ``u`` the versions line
  is metadata line ``16f + 2u + 1`` and the PD_Tag line ``16f + 2u``;
* an 8-ary tree above: one **L0** node per page (4 KB), one **L1** node per
  8 pages (32 KB), one **L2** node per 64 pages (256 KB), and an on-die
  SRAM **root** that never touches DRAM.

The 4 KB / 32 KB / 256 KB coverage ladder is what produces the stride
behaviour of paper Figure 5.

Tree-level (L0/L1/L2) nodes are placed on **even** set parity, like
PD_Tags.  This is an inference, not something the paper states outright:
Algorithm 1 recovers *exactly* 8 addresses per eviction set, which is only
possible if the odd (versions) sets never receive tree-node fills — a
stray L0 line resident in a versions set would make every peel-down test
read as "evicted" and collapse the recovered set.  Parity-partitioned
metadata is also consistent with the versions/PD_Tag split the paper does
establish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import AddressError
from ..mem.address import PhysicalLayout
from ..units import CACHE_LINE, CHUNK_SIZE, PAGE_SIZE

__all__ = ["TreeNode", "MEELayout", "HIT_LEVEL_NAMES"]

#: Names for the level at which a tree walk first hit, index 0..4.
HIT_LEVEL_NAMES = ("versions", "level0", "level1", "level2", "root")

#: Pages covered by one L0 / L1 / L2 node.
PAGES_PER_L0 = 1
PAGES_PER_L1 = 8
PAGES_PER_L2 = 64


@dataclass(frozen=True, slots=True)
class TreeNode:
    """One integrity-tree node: its level and metadata line address."""

    level: int  # 0 = versions, 1 = L0, 2 = L1, 3 = L2
    line_addr: int

    @property
    def level_name(self) -> str:
        return HIT_LEVEL_NAMES[self.level]


class MEELayout:
    """Computes metadata line addresses for protected physical addresses.

    Every node address is a pure function of the 512 B chunk an address
    falls into, so the leaf-to-root walk is memoized per chunk — the MEE
    probes the same handful of chunks millions of times per trial.  Only
    successful computations are cached; unprotected addresses raise
    :class:`~repro.errors.AddressError` every time.
    """

    #: log2(CHUNK_SIZE): shifts a paddr down to its chunk key.
    _CHUNK_SHIFT = CHUNK_SIZE.bit_length() - 1

    def __init__(self, physical: PhysicalLayout):
        self.physical = physical
        # chunk key (paddr >> 9) -> leaf-to-root node tuple / line addresses.
        self._walk_cache: Dict[int, Tuple[TreeNode, ...]] = {}
        self._versions_cache: Dict[int, int] = {}
        self._pd_tag_cache: Dict[int, int] = {}

    # -- index helpers ------------------------------------------------------

    def _page_and_chunk(self, paddr: int) -> tuple:
        """(page frame index within the protected region, chunk offset 0..7)."""
        if not self.physical.is_protected(paddr):
            raise AddressError(
                f"{paddr:#x} is not in the protected data region"
            )
        offset = paddr - self.physical.protected_base
        return offset // PAGE_SIZE, (offset % PAGE_SIZE) // CHUNK_SIZE

    # -- node addresses -----------------------------------------------------

    def versions_line(self, paddr: int) -> int:
        """Address of the versions node guarding ``paddr``'s 512 B chunk."""
        key = paddr >> self._CHUNK_SHIFT
        line = self._versions_cache.get(key)
        if line is None:
            frame, unit = self._page_and_chunk(paddr)
            line = self.physical.meta_base + (16 * frame + 2 * unit + 1) * CACHE_LINE
            self._versions_cache[key] = line
        return line

    def pd_tag_line(self, paddr: int) -> int:
        """Address of the PD_Tag (MAC) line paired with the versions node."""
        key = paddr >> self._CHUNK_SHIFT
        line = self._pd_tag_cache.get(key)
        if line is None:
            frame, unit = self._page_and_chunk(paddr)
            line = self.physical.meta_base + (16 * frame + 2 * unit) * CACHE_LINE
            self._pd_tag_cache[key] = line
        return line

    def l0_line(self, paddr: int) -> int:
        """Address of the L0 node covering ``paddr``'s page.

        Stride 2 lines keeps tree nodes on even set parity (see module
        docstring).
        """
        frame, _ = self._page_and_chunk(paddr)
        return self.physical.l0_base + (frame // PAGES_PER_L0) * 2 * CACHE_LINE

    def l1_line(self, paddr: int) -> int:
        """Address of the L1 node covering ``paddr``'s 32 KB group."""
        frame, _ = self._page_and_chunk(paddr)
        return self.physical.l1_base + (frame // PAGES_PER_L1) * 2 * CACHE_LINE

    def l2_line(self, paddr: int) -> int:
        """Address of the L2 node covering ``paddr``'s 256 KB group."""
        frame, _ = self._page_and_chunk(paddr)
        return self.physical.l2_base + (frame // PAGES_PER_L2) * 2 * CACHE_LINE

    def walk_nodes(self, paddr: int) -> Tuple[TreeNode, ...]:
        """Leaf-to-root node tuple for a protected access (root excluded —
        it lives in SRAM and needs no cache line).  Memoized per chunk."""
        key = paddr >> self._CHUNK_SHIFT
        nodes = self._walk_cache.get(key)
        if nodes is None:
            nodes = (
                TreeNode(0, self.versions_line(paddr)),
                TreeNode(1, self.l0_line(paddr)),
                TreeNode(2, self.l1_line(paddr)),
                TreeNode(3, self.l2_line(paddr)),
            )
            self._walk_cache[key] = nodes
        return nodes

    # -- set-index views (used by tests and the ground-truth oracle) --------

    def mee_set_of_line(self, line_addr: int, num_sets: int) -> int:
        """MEE-cache set index of a metadata line address."""
        return (line_addr // CACHE_LINE) % num_sets

    def versions_set(self, paddr: int, num_sets: int) -> int:
        """MEE-cache set index of the versions node guarding ``paddr``.

        Always odd with the interleaved layout — the property Figure 3
        illustrates.
        """
        return self.mee_set_of_line(self.versions_line(paddr), num_sets)
