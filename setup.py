"""Setuptools shim: enables legacy editable installs where the ``wheel``
package is unavailable (all metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
